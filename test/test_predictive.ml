(* Tests for the learning-augmented online algorithm. *)

open Dcache_core
open Helpers

let opt model seq = Offline_dp.cost (Offline_dp.solve model seq)

let blank_equals_standard =
  qcheck ~count:250 "predictive: the blank predictor reproduces standard SC exactly"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      let standard = Online_sc.run model seq in
      let predictive = Online_predictive.run Online_predictive.blank model seq in
      approx ~eps:1e-9 standard.total_cost predictive.total_cost
      && standard.num_transfers = predictive.num_transfers)

let oracle_beats_standard_on_crafted_instance () =
  (* revisit on s1 lands just past the standard window; the oracle
     holds the copy exactly long enough and saves a transfer *)
  let model = Cost_model.unit in
  let seq = Sequence.of_list ~m:2 [ (1, 1.0); (0, 1.5); (1, 2.6) ] in
  let standard = Online_sc.run model seq in
  let predicted = Online_predictive.run ~beta:0.5 (Online_predictive.oracle seq) model seq in
  Alcotest.(check int) "standard pays two transfers" 2 standard.num_transfers;
  Alcotest.(check int) "oracle saves one" 1 predicted.num_transfers;
  check_le "oracle run is cheaper" predicted.total_cost standard.total_cost

let oracle_cuts_wasted_tails () =
  (* single visits only: every speculative tail is wasted; the oracle
     (predicting no revisit ever) shrinks each to beta * delta_t *)
  let model = Cost_model.unit in
  let seq = Sequence.of_list ~m:4 [ (1, 1.0); (2, 4.0); (3, 7.0) ] in
  let standard = Online_sc.run model seq in
  let predicted = Online_predictive.run ~beta:0.25 (Online_predictive.oracle seq) model seq in
  check_le "tails shrink" predicted.caching_cost standard.caching_cost;
  Alcotest.(check bool) "strictly cheaper" true
    (predicted.total_cost < standard.total_cost -. 0.1)

let predictive_feasible =
  qcheck ~count:200 "predictive: runs render to feasible schedules costing the reported total"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      let run = Online_predictive.run ~beta:0.5 (Online_predictive.oracle seq) model seq in
      let sched = Online_sc.schedule_of_run seq run in
      (match Schedule.validate seq sched with Ok () -> true | Error _ -> false)
      && approx ~eps:1e-6 (Schedule.cost model sched) run.total_cost)

let predictive_at_least_opt =
  qcheck ~count:200 "predictive: even perfect predictions never beat the offline optimum"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      let run = Online_predictive.run ~beta:0.5 (Online_predictive.oracle seq) model seq in
      Dcache_prelude.Float_cmp.approx_ge run.total_cost (opt model seq))

let noisy_zero_error_is_oracle =
  qcheck ~count:100 "predictive: zero-noise predictor equals the oracle"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      let rng = Dcache_prelude.Rng.create 5 in
      let a = Online_predictive.run (Online_predictive.oracle seq) model seq in
      let b =
        Online_predictive.run (Online_predictive.noisy ~rng ~relative_error:0.0 seq) model seq
      in
      approx ~eps:1e-9 a.total_cost b.total_cost)

let frequency_predictor_feasible =
  qcheck ~count:150 "predictive: the log-mining predictor stays feasible"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      let run = Online_predictive.run (Online_predictive.frequency seq) model seq in
      let sched = Online_sc.schedule_of_run seq run in
      (match Schedule.validate seq sched with Ok () -> true | Error _ -> false)
      && Dcache_prelude.Float_cmp.approx_ge run.total_cost (opt model seq))

let oracle_prediction_values () =
  let seq = Sequence.of_list ~m:3 [ (1, 1.0); (2, 2.0); (1, 3.5) ] in
  let p = Online_predictive.oracle seq in
  (match p ~server:1 ~time:1.0 with
  | Some d -> check_float "next s1 visit" 2.5 d
  | None -> Alcotest.fail "expected a prediction");
  (match p ~server:1 ~time:3.5 with
  | Some d when d = infinity -> ()
  | Some _ | None -> Alcotest.fail "no s1 request after 3.5: expected known-never");
  match p ~server:0 ~time:0.5 with
  | Some d when d = infinity -> ()
  | Some _ | None -> Alcotest.fail "server 0: expected known-never"

let rejects_bad_beta () =
  let seq = Sequence.of_list ~m:2 [ (1, 1.0) ] in
  List.iter
    (fun beta ->
      Alcotest.(check bool) "bad beta" true
        (try
           ignore (Online_predictive.run ~beta Online_predictive.blank Cost_model.unit seq);
           false
         with Invalid_argument _ -> true))
    [ 0.0; -0.5; 1.5 ]

let suite =
  [
    blank_equals_standard;
    case "predictive: oracle saves the just-too-late transfer" oracle_beats_standard_on_crafted_instance;
    case "predictive: oracle cuts wasted tails" oracle_cuts_wasted_tails;
    predictive_feasible;
    predictive_at_least_opt;
    noisy_zero_error_is_oracle;
    frequency_predictor_feasible;
    case "predictive: oracle lookahead values" oracle_prediction_values;
    case "predictive: rejects beta outside (0,1]" rejects_bad_beta;
  ]
