let checked_half n = if n < 0 then invalid_arg "checked_half" else n / 2
