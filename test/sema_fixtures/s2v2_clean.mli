(* S2v2 negative interface: nothing to document — the implementation
   catches the chain's exception itself. *)

val check_nonneg : int -> unit
(** @raise Invalid_argument when the cost is negative. *)

val scaled : int -> int
(** @raise Invalid_argument on a negative cost ({!check_nonneg}). *)

val safe_total : int list -> int
(** Total of scaled costs, or [0] on invalid input; never raises. *)
