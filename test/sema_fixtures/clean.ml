(* Clean fixture: allocates freely outside hot loops, exports
   nothing, and accumulates only ints. *)

let triples xs = List.map (fun x -> (x, x, x)) xs

let count xs =
  let n = ref 0 in
  for i = 0 to Array.length xs - 1 do
    n := !n + xs.(i)
  done;
  !n

(* setup allocation in a hot function is fine: S1 bans the copying
   Array builtins at body level, not [Array.make]/[init] sizing *)
let masked_sum xs =
  let buf = Array.make 4 1 in
  let n = ref 0 in
  for i = 0 to Array.length xs - 1 do
    n := !n + xs.(i) + buf.(i land 3)
  done;
  !n
[@@hot]
