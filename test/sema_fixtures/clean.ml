(* Clean fixture: allocates freely outside hot loops, exports
   nothing, and accumulates only ints. *)

let triples xs = List.map (fun x -> (x, x, x)) xs

let count xs =
  let n = ref 0 in
  for i = 0 to Array.length xs - 1 do
    n := !n + xs.(i)
  done;
  !n
