(* S6: the ambient draw is two calls below the generator — the
   breach must propagate generate_load -> shuffle -> jitter *)
let jitter x = x +. Random.float 1.0
let shuffle xs = List.map jitter xs
let generate_load spec = shuffle spec
