(* S8: a raise while the lock is held (deadlock-on-error), and a lock
   never released on the normal return path. *)

let m = Mutex.create ()
let count = ref 0

let bump_exn n =
  Mutex.lock m;
  if n < 0 then invalid_arg "negative";
  count := !count + n;
  Mutex.unlock m

let lock_forever () =
  Mutex.lock m;
  !count
