(* S1 v2 over a cycle: the cons sits in [descend]; [collect] only
   reaches it through the mutual recursion, so flagging the hot call
   to [collect] requires the summary fixpoint to join the SCC *)
let rec collect n acc = if n = 0 then acc else descend (n - 1) acc
and descend n acc = collect n (n :: acc)

let drive n =
  let total = ref 0 in
  for i = 0 to n - 1 do
    let xs = collect i [] in
    total := !total + List.length xs
  done;
  !total
[@@hot]
