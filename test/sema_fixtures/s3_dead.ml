let used_export n = n + 1
let dead_export n = n - 1
let kept_export n = n * 2
