(* S2 fixture: the implementation raises but this doc never says so. *)

val checked_half : int -> int
(** Halves a non-negative number. *)
