(* S2v2 negative: the same raising chain, but the public entry guards
   the calls with [try ... with], so nothing escapes. *)

let check_nonneg c = if c < 0 then invalid_arg "negative cost"

let scaled c =
  check_nonneg c;
  c * 2

let safe_total costs =
  try List.fold_left (fun acc c -> acc + scaled c) 0 costs with Invalid_argument _ -> 0
