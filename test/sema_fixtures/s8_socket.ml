(* S8 resources: a local [Unix] shim keys like the real one under the
   last-two-components rule.  [serve_one] leaks its fd when the check
   raises; [leak_on_return] never closes; [safe] releases in
   [Fun.protect ~finally]; [accept_close] closes a pair-bound fd. *)

module Unix = struct
  type file_descr = int

  let socket () = 0
  let accept fd = (fd + 1, "peer")
  let close (_ : file_descr) = ()
end

let serve_one payload =
  let fd = Unix.socket () in
  if payload < 0 then invalid_arg "bad payload";
  Unix.close fd

let leak_on_return () =
  let _fd = Unix.socket () in
  ()

let safe payload =
  let fd = Unix.socket () in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      if payload < 0 then invalid_arg "bad payload";
      payload)

let accept_close listener =
  let fd, _peer = Unix.accept listener in
  Unix.close fd
