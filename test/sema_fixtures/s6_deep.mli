val jitter : float -> float
val shuffle : float list -> float list
val generate_load : float list -> float list
