(* S6 negative: a generator that threads its randomness through an
   explicit Rng state is a deterministic function of (seed, spec) *)
module Rng = struct
  type t = { mutable s : int }

  let make seed = { s = seed }

  let next r =
    r.s <- (r.s * 25214903917) + 11;
    r.s
end

let step (r : Rng.t) = Rng.next r land 0xFFFF

let generate_requests (r : Rng.t) n = List.init n (fun _ -> step r)
