(* S1v3: literals bound in [@@hot] loops that provably never escape
   the iteration — not stored, returned or captured, and every callee
   they reach only projects them.  Hoistable / flattenable. *)
type span = { lo : int; hi : int }

let width s = s.hi - s.lo

let spans (xs : int array) =
  let acc = ref 0 in
  for i = 0 to Array.length xs - 2 do
    let sp = { lo = xs.(i); hi = xs.(i + 1) } in
    acc := !acc + width sp
  done;
  !acc
[@@hot]

let opt_sum (xs : int array) =
  let acc = ref 0 in
  for i = 0 to Array.length xs - 1 do
    let o = Some xs.(i) in
    (match o with Some v -> acc := !acc + v | None -> ());
    ()
  done;
  !acc
[@@hot]
