(* S7 negatives: a Mutex-guarded write, an Atomic counter and a pure
   task are all domain-safe *)
module Pool = struct
  let parallel_init n f = List.init n f
  let parallel_map f xs = List.map f xs
end

let lock = Mutex.create ()
let total = ref 0
let counter = Atomic.make 0

let guarded_sum n =
  let _ =
    Pool.parallel_init n (fun i ->
        Mutex.lock lock;
        total := !total + i;
        Mutex.unlock lock)
  in
  !total

let atomic_count xs = Pool.parallel_map (fun x -> Atomic.fetch_and_add counter x) xs
let pure_square xs = Pool.parallel_map (fun x -> x * x) xs
