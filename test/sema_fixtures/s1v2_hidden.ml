(* S1 v2: the per-iteration tuple is two calls below the hot loop —
   invisible to the local S1 scan, caught via call-graph summaries *)
let wrap x = (x, x + 1)
let make_pair x = wrap (x * 2)
let total = ref 0

let sum n =
  for i = 0 to n - 1 do
    let a, b = make_pair i in
    total := !total + a + b
  done;
  !total
[@@hot]
