(* S7: a task closure bumping a captured ref races across domains *)
module Pool = struct
  let parallel_init n f = List.init n f
end

let run_trials n =
  let hits = ref 0 in
  let _ = Pool.parallel_init n (fun i -> if i land 1 = 0 then incr hits) in
  !hits
