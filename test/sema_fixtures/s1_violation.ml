(* S1 fixture: a [@@hot] loop allocating a tuple per iteration. *)

let sum_indexed xs =
  let total = ref 0 in
  for i = 0 to Array.length xs - 1 do
    let pair = (xs.(i), i) in
    total := !total + fst pair + snd pair
  done;
  !total
[@@hot]
