(* S1 fixture: an [@@hot] function paying a per-call [Array.copy] at
   function-body level — outside any loop, where the loop-only scan
   cannot see it. *)

let snapshot_sum rows last =
  let copy = Array.copy last in
  let total = ref 0 in
  for i = 0 to Array.length rows - 1 do
    total := !total + rows.(i) + copy.(i land (Array.length copy - 1))
  done;
  !total
[@@hot]
