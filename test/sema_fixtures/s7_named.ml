(* S7: a named task writing a module-level Hashtbl without a lock *)
module Pool = struct
  let parallel_map f xs = List.map f xs
end

let results : (int, int) Hashtbl.t = Hashtbl.create 16
let record i = Hashtbl.replace results i (i * i)
let tally xs = Pool.parallel_map record xs
