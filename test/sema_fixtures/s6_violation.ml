(* S6: ambient randomness one call below a workload generator *)
let pick n = Random.int n

let generate_trace n = List.init n (fun i -> i + pick (i + 1))
