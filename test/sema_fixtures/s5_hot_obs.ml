(* S5 fixture: a [@@hot] body constructing a Recording sink per call
   instead of probing the one installed at startup. *)

type recorder = { mutable events : int }
type sink = Noop | Recording of recorder

let hot_trace x =
  let s = Recording { events = 0 } in
  match s with Noop -> x | Recording r -> r.events + x
[@@hot]

(* exemption: the same construction outside a hot binding is the
   sanctioned startup pattern *)
let startup_sink () = Recording { events = 0 }

(* exemption: a constructor that happens to be called Recording on a
   type that is not a sink *)
type mode = Idle | Recording of string

let hot_mode x = match (Recording "tape" : mode) with Idle -> x | Recording _ -> x + 1 [@@hot]

(* S5 also covers the setup-cost obs entry points: constructing a
   flight-recorder ring or binding a metrics endpoint per call.
   These local modules key the same way as the Dcache_obs ones. *)
module Recorder = struct
  type t = { mutable ticks : int }

  let create () = { ticks = 0 }
  let tick t = t.ticks <- t.ticks + 1
end

module Prometheus = struct
  type server = { port : int }

  let listen ~port () = { port }
  let port s = s.port
end

let hot_ring x =
  let r = Recorder.create () in
  Recorder.tick r;
  x + r.ticks
[@@hot]

let hot_listen x = x + Prometheus.port (Prometheus.listen ~port:0 ()) [@@hot]

(* exemption: the same calls outside hot bindings are the sanctioned
   startup pattern *)
let startup_ring () = Recorder.create ()
let startup_endpoint () = Prometheus.listen ~port:7777 ()

(* S5 also covers the streaming competitive-ratio auditor: a fresh
   Audit state per hot call rebuilds the witness ring and per-stream
   telemetry on the request path. *)
module Audit = struct
  type t = { mutable seen : int }

  let create () = { seen = 0 }
  let observe t = t.seen <- t.seen + 1
end

let hot_audit x =
  let a = Audit.create () in
  Audit.observe a;
  x + a.Audit.seen
[@@hot]

(* exemption: creating the auditor with the stream, outside hot code *)
let startup_audit () = Audit.create ()

(* S5 also covers labeled-child resolution: [counter_with_label] is a
   lock-and-hash interning step, so a hot body re-resolving per call
   pays the lookup the vec API exists to hoist. *)
module Obs = struct
  type counter = int ref
  type counter_vec = { mutable children : counter list }

  let counter_vec () = { children = [] }

  let counter_with_label v _label =
    let c = ref 0 in
    v.children <- c :: v.children;
    c

  let incr c = Stdlib.incr c
end

let family = Obs.counter_vec ()

let hot_resolve x =
  let c = Obs.counter_with_label family "item" in
  Obs.incr c;
  x + !c
[@@hot]

(* exemption: resolving once outside hot code and bumping the plain
   cell in the hot body is the sanctioned loop-entry pattern *)
let resolved = Obs.counter_with_label family "item"
let hot_bump x = Obs.incr resolved; x + !resolved [@@hot]
