(* S5 fixture: a [@@hot] body constructing a Recording sink per call
   instead of probing the one installed at startup. *)

type recorder = { mutable events : int }
type sink = Noop | Recording of recorder

let hot_trace x =
  let s = Recording { events = 0 } in
  match s with Noop -> x | Recording r -> r.events + x
[@@hot]

(* exemption: the same construction outside a hot binding is the
   sanctioned startup pattern *)
let startup_sink () = Recording { events = 0 }

(* exemption: a constructor that happens to be called Recording on a
   type that is not a sink *)
type mode = Idle | Recording of string

let hot_mode x = match (Recording "tape" : mode) with Idle -> x | Recording _ -> x + 1 [@@hot]
