(* S3 fixture: [dead_export] has no external user; [used_export] has
   one in another library; [kept_export] is dead but suppressed. *)

val used_export : int -> int
val dead_export : int -> int

(* dcache-sema: allow S3 — fixture keeps a deliberately dead export *)
val kept_export : int -> int
