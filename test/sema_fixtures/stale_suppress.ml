(* a suppression that fires for nothing must be reported stale *)
let double x = x * 2

(* dcache-sema: allow S1 — stale on purpose: nothing here allocates in a hot loop *)
let quadruple x = double (double x)
