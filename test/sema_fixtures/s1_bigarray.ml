(* packed-row discipline: scalar-kind Bigarray get/set in hot bodies
   are unboxed loads/stores and must stay S1-clean; a proxy built in
   the hot body ([Array1.sub]) and a creator hidden behind a callee
   called from a hot loop ([Array1.create]) must both fire. *)
type ba = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

let sum_packed (a : ba) n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + Int32.to_int (Bigarray.Array1.unsafe_get a i)
  done;
  !acc
[@@hot]

let tail_view (a : ba) n =
  let v = Bigarray.Array1.sub a 1 (n - 1) in
  Int32.to_int (Bigarray.Array1.get v 0)
[@@hot]

let fresh_row n : ba = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout n

let churn (a : ba) n =
  let total = ref 0 in
  for i = 0 to n - 1 do
    let r = fresh_row 4 in
    Bigarray.Array1.set r 0 (Bigarray.Array1.get a i);
    total := !total + Int32.to_int (Bigarray.Array1.get r 0)
  done;
  !total
[@@hot]
