(* S1 v2: a record built by a helper called from the hot loop *)
type interval = { lo : int; hi : int }

let span lo hi = { lo; hi }

let width_sum (xs : int array) =
  let acc = ref 0 in
  for i = 0 to Array.length xs - 2 do
    let iv = span xs.(i) xs.(i + 1) in
    acc := !acc + (iv.hi - iv.lo)
  done;
  !acc
[@@hot]
