(* S1v3 negatives: the record is stored into the result array and the
   option is stashed in a ref — both escape their iteration, so the
   escape analysis must stay silent. *)
type span = { lo : int; hi : int }

let fill (xs : int array) (dst : span array) =
  for i = 0 to Array.length xs - 2 do
    let sp = { lo = xs.(i); hi = xs.(i + 1) } in
    dst.(i) <- sp
  done
[@@hot]

let last_opt (xs : int array) =
  let last = ref None in
  for i = 0 to Array.length xs - 1 do
    let o = Some xs.(i) in
    last := o
  done;
  !last
[@@hot]
