(* Compiled into a sibling "library": keeps [S3_dead.used_export]
   alive across the library boundary. *)

let use = S3_dead.used_export 41
