(* One suppression comment silencing two different rules on the line
   below it: the tuple is S1, the bare [+.] fold on a cost-named float
   accumulator is S4. *)

let weighted_total (xs : float array) =
  let total = ref 0.0 in
  for i = 0 to Array.length xs - 1 do
    (* dcache-sema: allow S1 S4 — one comment covers both rules on the next line *)
    let p = (xs.(i), i) in total := !total +. fst p
  done;
  !total
[@@hot]
