(* S4 fixture: a float cost accumulator folded with bare [+.]. *)

let total_of costs =
  let total = ref 0.0 in
  for i = 0 to Array.length costs - 1 do
    total := !total +. costs.(i)
  done;
  !total
