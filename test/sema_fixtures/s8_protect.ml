(* S8 negatives: [Fun.protect ~finally] releases on every path; a
   manual unlock-then-reraise on the exception path balances too; an
   unlock-only body (negative balance) is the caller's half of a
   hand-off protocol, not a leak. *)

let m = Mutex.create ()
let count = ref 0

let bump_protected n =
  Mutex.lock m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock m)
    (fun () ->
      if n < 0 then invalid_arg "negative";
      count := !count + n)

let guarded n =
  Mutex.lock m;
  (match count := !count + n with
  | () -> ()
  | exception e ->
      Mutex.unlock m;
      raise e);
  Mutex.unlock m

let drain_locked () =
  count := 0;
  Mutex.unlock m
