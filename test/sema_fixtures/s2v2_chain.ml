(* S2v2: Invalid_argument reaches [total_cost] only through the
   [scaled] -> [check_nonneg] chain; no raise appears in its own
   body (the old syntactic S2 could not see this). *)

let check_nonneg c = if c < 0 then invalid_arg "negative cost"

let scaled c =
  check_nonneg c;
  c * 2

let total_cost costs = List.fold_left (fun acc c -> acc + scaled c) 0 costs
