(* S1 v2 negatives: an in-place helper is fine, and a [@@hot] callee
   that allocates (amortised growth) is exempt — hot functions are
   already certified by the local S1 pass and the perf gate *)
let bump (a : int array) i = a.(i) <- a.(i) + 1

let grow_hot (dst : int array ref) v =
  let a = Array.make ((Array.length !dst * 2) + 1) v in
  dst := a
[@@hot]

let sweep (buf : int array ref) rounds =
  for _ = 1 to rounds do
    for i = 0 to Array.length !buf - 1 do
      bump !buf i
    done;
    grow_hot buf 0
  done
[@@hot]
