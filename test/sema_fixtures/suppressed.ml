(* Suppression fixture: the same S1/S4 shapes as the violation
   fixtures, each silenced by a [dcache-sema:] comment. *)

let sum_indexed xs =
  let total = ref 0 in
  for i = 0 to Array.length xs - 1 do
    (* dcache-sema: allow S1 — fixture exercises suppression *)
    let pair = (xs.(i), i) in
    total := !total + fst pair
  done;
  !total
[@@hot]

let total_of costs =
  let total = ref 0.0 in
  for i = 0 to Array.length costs - 1 do
    (* dcache-sema: allow S4 — fixture exercises suppression *)
    total := !total +. costs.(i)
  done;
  !total
