(* S2v2 fixture interface: the helpers document their raise; the
   public summation does not. *)

val check_nonneg : int -> unit
(** @raise Invalid_argument when the cost is negative. *)

val scaled : int -> int
(** @raise Invalid_argument on a negative cost ({!check_nonneg}). *)

val total_cost : int list -> int
(** Sum of scaled costs. *)
