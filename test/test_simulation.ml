(* Tests for the discrete-event engine, its policies, and the replay
   cross-validation loop. *)

open Dcache_core
open Helpers
module Sim = Dcache_sim

let unit = Cost_model.unit

(* ------------------------------------------------------ cross-validation *)

let engine_sc_equals_analytic =
  qcheck ~count:300 "engine: timer-driven SC policy reproduces Online_sc exactly"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      let analytic = Online_sc.run model seq in
      let engine = Sim.Engine.run (module Sim.Sc_policy) model seq in
      approx ~eps:1e-6 analytic.total_cost engine.metrics.total_cost
      && approx ~eps:1e-6 analytic.caching_cost engine.metrics.caching_cost
      && analytic.num_transfers = engine.metrics.num_transfers)

let replay_optimal_schedule =
  qcheck ~count:300 "engine: replaying the optimal schedule bills exactly C(n)"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      let dp = Offline_dp.solve model seq in
      let sched = Offline_dp.schedule dp in
      let result = Sim.Engine.run (Sim.Replay.make sched) model seq in
      approx ~eps:1e-6 result.metrics.total_cost (Offline_dp.cost dp))

let replay_emits_equivalent_schedule =
  qcheck ~count:150 "engine: the engine's recorded schedule prices like the replayed one"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      let sched = Offline_dp.schedule (Offline_dp.solve model seq) in
      let result = Sim.Engine.run (Sim.Replay.make sched) model seq in
      approx ~eps:1e-6 (Schedule.cost model result.schedule) (Schedule.cost model sched))

let engine_simple_policies_match_analytic =
  qcheck ~count:200 "engine: static-home and follow policies match their analytic outcomes"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      let home = Sim.Engine.run (module Sim.Simple_policies.Static_home) model seq in
      let follow = Sim.Engine.run (module Sim.Simple_policies.Follow) model seq in
      approx ~eps:1e-6 home.metrics.total_cost
        (Dcache_baselines.Online_policies.static_home model seq).cost
      && approx ~eps:1e-6 follow.metrics.total_cost
           (Dcache_baselines.Online_policies.follow model seq).cost)

let engine_cache_everywhere_matches =
  qcheck ~count:200 "engine: cache-everywhere policy matches its analytic outcome"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      let r = Sim.Engine.run (module Sim.Simple_policies.Cache_everywhere) model seq in
      approx ~eps:1e-6 r.metrics.total_cost
        (Dcache_baselines.Online_policies.cache_everywhere model seq).cost)

(* --------------------------------------------------------------- metrics *)

let metrics_hit_accounting () =
  let seq = Sequence.of_list ~m:2 [ (0, 0.5); (1, 1.0); (1, 1.5) ] in
  let r = Sim.Engine.run (module Sim.Sc_policy) unit seq in
  (* r1 hits the initial copy; r2 misses; r3 hits the fresh copy *)
  Alcotest.(check int) "hits" 2 r.metrics.cache_hits;
  Alcotest.(check int) "misses" 1 r.metrics.cache_misses;
  check_float "hit ratio" (2.0 /. 3.0) (Sim.Metrics.hit_ratio r.metrics)

let metrics_copy_time_integral () =
  (* static home: exactly one resident copy for the whole horizon *)
  let seq = Sequence.of_list ~m:2 [ (1, 2.0); (1, 4.0) ] in
  let r = Sim.Engine.run (module Sim.Simple_policies.Static_home) unit seq in
  check_float "copy-time = horizon" 4.0 r.metrics.copy_time;
  Alcotest.(check int) "peak copies" 1 r.metrics.peak_copies

let metrics_peak_copies_cache_everywhere () =
  let seq = Sequence.of_list ~m:3 [ (1, 1.0); (2, 2.0) ] in
  let r = Sim.Engine.run (module Sim.Simple_policies.Cache_everywhere) unit seq in
  Alcotest.(check int) "three residents at the end" 3 r.metrics.peak_copies

(* ------------------------------------------------------------ invariants *)

module Misbehaving_drop_all = struct
  type t = unit

  let name = "drop-all"
  let create _ _ = ()
  let init () _ = []

  let on_request () (view : Sim.Policy.view) ~index:_ ~server =
    (* serve, then drop every copy incl. our own: must trip the engine *)
    let drops = List.filter_map (fun s -> if view.holds s then Some (Sim.Policy.Drop s) else None)
        (List.init 3 Fun.id) in
    (if view.holds server then [ Sim.Policy.Serve_from_cache ]
     else [ Sim.Policy.Fetch { src = (if server = 0 then 1 else 0) } ])
    @ drops

  let on_timer () _ ~server:_ = []
end

module Misbehaving_no_serve = struct
  type t = unit

  let name = "no-serve"
  let create _ _ = ()
  let init () _ = []
  let on_request () _ ~index:_ ~server:_ = []
  let on_timer () _ ~server:_ = []
end

module Misbehaving_ghost_fetch = struct
  type t = unit

  let name = "ghost-fetch"
  let create _ _ = ()
  let init () _ = []

  let on_request () (view : Sim.Policy.view) ~index:_ ~server =
    if view.holds server then [ Sim.Policy.Serve_from_cache ]
    else
      (* always fetch from a server that certainly holds nothing *)
      let empty = List.find (fun s -> not (view.holds s)) (List.init 3 (fun i -> (server + i + 1) mod 3)) in
      [ Sim.Policy.Fetch { src = empty } ]

  let on_timer () _ ~server:_ = []
end

let engine_rejects_bad_policies () =
  let seq = Sequence.of_list ~m:3 [ (1, 1.0); (2, 2.0) ] in
  let trips (module P : Sim.Policy.POLICY) =
    try
      ignore (Sim.Engine.run (module P) unit seq);
      false
    with Sim.Engine.Engine_error _ -> true
  in
  Alcotest.(check bool) "dropping the last copy" true (trips (module Misbehaving_drop_all));
  Alcotest.(check bool) "failing to serve" true (trips (module Misbehaving_no_serve));
  Alcotest.(check bool) "fetching from an empty server" true (trips (module Misbehaving_ghost_fetch))

let engine_rejects_past_timer () =
  let module Past_timer = struct
    type t = unit

    let name = "past-timer"
    let create _ _ = ()
    let init () _ = []

    let on_request () (view : Sim.Policy.view) ~index:_ ~server =
      let serve =
        if view.holds server then [ Sim.Policy.Serve_from_cache ]
        else [ Sim.Policy.Fetch { src = 0 } ]
      in
      serve @ [ Sim.Policy.Set_timer { server; at = view.now -. 1.0 } ]

    let on_timer () _ ~server:_ = []
  end in
  let seq = Sequence.of_list ~m:2 [ (1, 2.0) ] in
  Alcotest.(check bool) "past timer" true
    (try ignore (Sim.Engine.run (module Past_timer) unit seq); false
     with Sim.Engine.Engine_error _ -> true)

(* --------------------------------------------------------- heterogeneous *)

let homogeneous_costs_roundtrip () =
  let model = Cost_model.make ~mu:2.0 ~lambda:5.0 () in
  let costs = Sim.Engine.homogeneous model in
  check_float "mu_of" 2.0 (costs.Sim.Engine.mu_of 3);
  check_float "lambda_of" 5.0 (costs.Sim.Engine.lambda_of ~src:0 ~dst:2);
  check_float "no uplink" infinity (costs.Sim.Engine.upload_of 1);
  (* running with the explicit homogeneous table must equal the default *)
  let seq = Sequence.of_list ~m:3 [ (1, 1.0); (2, 2.0); (1, 3.0) ] in
  let explicit = Sim.Engine.run ~costs (module Sim.Sc_policy) model seq in
  let implicit = Sim.Engine.run (module Sim.Sc_policy) model seq in
  check_float "same bill" implicit.metrics.total_cost explicit.metrics.total_cost

let heterogeneous_costs_respected () =
  (* one remote request; the transfer price depends on the pair *)
  let seq = Sequence.of_list ~m:3 [ (2, 1.0) ] in
  let costs =
    {
      Sim.Engine.mu_of = (fun s -> if s = 0 then 2.0 else 1.0);
      lambda_of = (fun ~src ~dst -> if src = 0 && dst = 2 then 7.0 else 1.0);
      upload_of = (fun _ -> infinity);
    }
  in
  let r = Sim.Engine.run ~costs (module Sim.Simple_policies.Static_home) unit seq in
  (* s0 caches [0,1] at mu=2, transfer 0->2 at 7 *)
  check_float "hetero bill" 9.0 r.metrics.total_cost

let heterogeneous_sc_still_feasible =
  qcheck ~count:100 "engine: SC under heterogeneous costs completes and bills positively"
    (nonempty_problem_arbitrary ~max_m:4 ())
    (fun { model; seq } ->
      let costs =
        {
          Sim.Engine.mu_of = (fun s -> 1.0 +. (0.5 *. float_of_int s));
          lambda_of = (fun ~src ~dst -> 1.0 +. (0.25 *. float_of_int (abs (src - dst))));
          upload_of = (fun _ -> infinity);
        }
      in
      let r = Sim.Engine.run ~costs (module Sim.Sc_policy) model seq in
      r.metrics.total_cost > 0.0)

let suite =
  [
    engine_sc_equals_analytic;
    replay_optimal_schedule;
    replay_emits_equivalent_schedule;
    engine_simple_policies_match_analytic;
    engine_cache_everywhere_matches;
    case "metrics: hit/miss accounting" metrics_hit_accounting;
    case "metrics: copy-time integral" metrics_copy_time_integral;
    case "metrics: peak copies" metrics_peak_copies_cache_everywhere;
    case "engine: rejects invariant-violating policies" engine_rejects_bad_policies;
    case "engine: rejects timers armed in the past" engine_rejects_past_timer;
    case "engine: heterogeneous costs respected" heterogeneous_costs_respected;
    heterogeneous_sc_still_feasible;
  ]
