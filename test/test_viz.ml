(* Tests for trace statistics and SVG rendering. *)

open Dcache_core
open Helpers
module TS = Dcache_workload.Trace_stats
module Svg = Dcache_viz.Svg

(* ------------------------------------------------------- trace stats *)

let stats_on_known_trace () =
  (* requests: (1,1.0) (1,2.0) (2,3.5) (1,4.0) *)
  let seq = Sequence.of_list ~m:3 [ (1, 1.0); (1, 2.0); (2, 3.5); (1, 4.0) ] in
  let s = TS.analyze seq in
  Alcotest.(check int) "n" 4 s.n;
  Alcotest.(check int) "servers used" 2 s.servers_used;
  check_float "horizon" 4.0 s.horizon;
  (* gaps: 1.0, 1.0, 1.5, 0.5 *)
  check_float "mean gap" 1.0 s.mean_gap;
  check_float "median gap" 1.0 s.median_gap;
  (* locality: r2 repeats s1 -> 1 of 3 *)
  check_float "locality" (1.0 /. 3.0) s.locality;
  (* finite revisits with a real (non-boundary) predecessor: r2 (1.0), r4 (2.0) *)
  Alcotest.(check int) "revisit count" 2 (Array.length s.revisits);
  check_float "mean revisit" 1.5 s.mean_revisit;
  (* popularity: s1 x3, s2 x1 *)
  Alcotest.(check (pair int int)) "top server" (1, 3) s.popularity.(0);
  check_float "top share" 0.75 s.top_share

let stats_cacheability () =
  let seq = Sequence.of_list ~m:2 [ (1, 1.0); (1, 1.5); (1, 4.0) ] in
  let s = TS.analyze seq in
  (* revisits: 0.5 and 2.5 *)
  let cheap = TS.cacheability (Cost_model.make ~mu:1.0 ~lambda:1.0 ()) s in
  check_float "one of two under the window" 0.5 cheap;
  let all = TS.cacheability (Cost_model.make ~mu:1.0 ~lambda:10.0 ()) s in
  check_float "all cheap with a huge window" 1.0 all

let stats_rejects_empty () =
  Alcotest.(check bool) "empty" true
    (try ignore (TS.analyze (Sequence.of_list ~m:2 [])); false with Invalid_argument _ -> true)

let stats_locality_tracks_mobility =
  qcheck ~count:30 "trace_stats: sticky mobility yields high locality"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 1000))
    (fun seed ->
      let seq =
        Dcache_workload.Generator.generate_seeded ~seed
          {
            Dcache_workload.Generator.m = 6;
            n = 300;
            arrival = Dcache_workload.Arrival.Poisson { rate = 1.0 };
            placement = Dcache_workload.Placement.Mobility { stay = 0.95; ring = true };
          }
      in
      (TS.analyze seq).locality > 0.8)

(* --------------------------------------------------------------- svg *)

let count_needle needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i acc =
    if i + n > h then acc
    else if String.sub haystack i n = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let svg_structure () =
  let model = Cost_model.unit in
  let seq = fig6 () in
  let sched = Offline_dp.schedule (Offline_dp.solve model seq) in
  let svg = Svg.schedule_svg seq sched in
  Alcotest.(check bool) "xml header" true (String.length svg > 50 && String.sub svg 0 5 = "<?xml");
  Alcotest.(check int) "one svg element open/close" 1 (count_needle "</svg>" svg);
  (* one dot per request *)
  Alcotest.(check int) "request dots" (Sequence.n seq) (count_needle "<circle" svg);
  (* one bar per cache interval (+0: background rect is width=100%) *)
  Alcotest.(check int) "cache bars"
    (List.length (Schedule.caches sched))
    (count_needle "rx=\"3\"" svg);
  (* one arrow per transfer *)
  Alcotest.(check int) "transfer arrows"
    (Schedule.num_transfers sched)
    (count_needle "marker-end" svg)

let svg_comparison_panels () =
  let model = Cost_model.unit in
  let seq = fig6 () in
  let opt = Offline_dp.schedule (Offline_dp.solve model seq) in
  let sc = Online_sc.schedule_of_run seq (Online_sc.run model seq) in
  let svg =
    Svg.comparison_svg
      ~options:{ Svg.default_options with title = Some "cmp" }
      seq
      [ ("optimal", opt); ("speculative", sc) ]
  in
  Alcotest.(check int) "two panels of dots" (2 * Sequence.n seq) (count_needle "<circle" svg);
  Alcotest.(check bool) "subtitles present" true
    (count_needle ">optimal</text>" svg = 1 && count_needle ">speculative</text>" svg = 1);
  Alcotest.(check bool) "title present" true (count_needle ">cmp</text>" svg = 1)

let svg_balanced_tags =
  qcheck ~count:50 "svg: elements balance on random schedules"
    (nonempty_problem_arbitrary ~max_n:12 ())
    (fun { model; seq } ->
      let sched = Offline_dp.schedule (Offline_dp.solve model seq) in
      let svg = Svg.schedule_svg seq sched in
      count_needle "<svg" svg = 1
      && count_needle "</svg>" svg = 1
      && count_needle "<circle" svg = Sequence.n seq
      && count_needle "<circle" svg = count_needle "</circle>" svg
      (* the background rect is the only self-closing one *)
      && count_needle "<rect" svg = count_needle "</rect>" svg + 1
      && count_needle "<text" svg = count_needle "</text>" svg
      && count_needle "<title>" svg = count_needle "</title>" svg)

let svg_file_roundtrip () =
  let model = Cost_model.unit in
  let seq = fig2 () in
  let svg = Svg.schedule_svg seq (Offline_dp.schedule (Offline_dp.solve model seq)) in
  let filename = Filename.temp_file "dcache" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove filename)
    (fun () ->
      Svg.write ~filename svg;
      let ic = open_in filename in
      let len = in_channel_length ic in
      let read = really_input_string ic len in
      close_in ic;
      Alcotest.(check int) "bytes" (String.length svg) (String.length read))

let suite =
  [
    case "trace_stats: known trace" stats_on_known_trace;
    case "trace_stats: cacheability vs window" stats_cacheability;
    case "trace_stats: rejects empty traces" stats_rejects_empty;
    stats_locality_tracks_mobility;
    case "svg: structural element counts" svg_structure;
    case "svg: comparison panels" svg_comparison_panels;
    svg_balanced_tags;
    case "svg: file write" svg_file_roundtrip;
  ]
