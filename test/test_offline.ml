(* Tests for the O(mn) offline dynamic program (Contribution 1):
   reproduction of the paper's worked examples, optimality against the
   independent exact solvers, and feasibility of reconstruction. *)

open Dcache_core
open Helpers
module B = Dcache_baselines

let unit = Cost_model.unit

module I = Dcache_experiments.Instances

(* ------------------------------------------------ paper worked examples *)

let fig6_c_vector () =
  let r = Offline_dp.solve I.fig6_model (fig6 ()) in
  let c = Offline_dp.c r in
  (* C(0) .. C(7) as stated in the paper's text, plus the final C(8) *)
  let expected = Array.append I.fig6_expected_c [| 10.3 |] in
  Array.iteri (fun i e -> check_float (Printf.sprintf "C(%d)" i) e c.(i)) expected

let fig6_d_vector () =
  let r = Offline_dp.solve I.fig6_model (fig6 ()) in
  let d = Offline_dp.d r in
  (* the first request on each server cannot be served by cache *)
  List.iter (fun i -> Alcotest.(check bool) (Printf.sprintf "D(%d) = inf" i) true (d.(i) = infinity)) [ 1; 2; 3 ];
  check_float "D(4)" I.fig6_expected_d4 d.(4);
  check_float "D(5)" 6.5 d.(5);
  check_float "D(6)" 7.1 d.(6);
  check_float "D(7)" I.fig6_expected_d7 d.(7);
  check_float "D(8)" 10.3 d.(8)

let fig6_pivots () =
  let r = Offline_dp.solve unit (fig6 ()) in
  (* D(5) is reached through pivot kappa = 4 (the s^1 interval [0, 1.4]
     spans t_{p(5)} = t_1 = 0.5); D(7) through kappa = 4 as well *)
  Alcotest.(check (option int)) "pivot of D(5)" (Some 4) (Offline_dp.pivot_of r 5);
  Alcotest.(check (option int)) "pivot of D(7)" (Some 4) (Offline_dp.pivot_of r 7);
  (* D(4) and D(6) are anchored at C(p(i)) *)
  Alcotest.(check (option int)) "D(4) anchored" None (Offline_dp.pivot_of r 4);
  Alcotest.(check (option int)) "D(6) anchored" None (Offline_dp.pivot_of r 6)

let fig6_bounds () =
  let r = Offline_dp.solve unit (fig6 ()) in
  let big_b = Offline_dp.running_bounds r in
  check_float "B_6 = 5.6 (used in the paper's D(7) computation)" 5.6 big_b.(6);
  check_float "B_2 = 2" 2.0 big_b.(2)

let fig2_costs () =
  let seq = fig2 () in
  let r = Offline_dp.solve I.fig2_model seq in
  let sched = Offline_dp.schedule r in
  check_float "total 7.2" I.fig2_expected_total (Offline_dp.cost r);
  check_float "caching 3.2" I.fig2_expected_caching (Schedule.caching_cost unit sched);
  check_float "transfers 4.0"
    (float_of_int I.fig2_expected_transfers)
    (Schedule.transfer_cost unit sched);
  Alcotest.(check int) "4 transfers" I.fig2_expected_transfers (Schedule.num_transfers sched);
  Alcotest.(check bool) "standard form" true (Schedule.is_standard_form seq sched)

(* --------------------------------------------------------- degenerate *)

let empty_sequence () =
  let seq = Sequence.of_list ~m:3 [] in
  let r = Offline_dp.solve unit seq in
  check_float "no requests, no cost" 0.0 (Offline_dp.cost r);
  Alcotest.(check int) "empty schedule" 0 (List.length (Schedule.caches (Offline_dp.schedule r)))

let single_request_home () =
  (* one request on the initial server: just cache until it *)
  let seq = Sequence.of_list ~m:2 [ (0, 3.0) ] in
  check_float "mu * t" 3.0 (Offline_dp.cost (Offline_dp.solve unit seq))

let single_request_remote () =
  let seq = Sequence.of_list ~m:2 [ (1, 3.0) ] in
  check_float "mu * t + lambda" 4.0 (Offline_dp.cost (Offline_dp.solve unit seq))

let one_server_only () =
  let seq = Sequence.of_list ~m:1 [ (0, 1.0); (0, 2.5); (0, 4.0) ] in
  (* single server: no transfers possible, pure caching *)
  let r = Offline_dp.solve unit seq in
  check_float "pure caching" 4.0 (Offline_dp.cost r);
  Alcotest.(check int) "no transfers" 0 (Schedule.num_transfers (Offline_dp.schedule r))

let transfer_vs_cache_breakeven () =
  (* two requests on server 1; the second at distance exactly
     lambda/mu: caching and re-transferring cost the same *)
  let model = Cost_model.make ~mu:1.0 ~lambda:2.0 () in
  let seq = Sequence.of_list ~m:2 [ (1, 1.0); (1, 3.0) ] in
  (* serve r1 by transfer (cache s0 [0,1], lambda) then either keep the
     copy on s1 for 2.0 (cost 2) or keep s0's and re-transfer (2+2 -> no,
     coverage: someone must cache [1,3] anyway: min is 2 either way) *)
  check_float "breakeven" (1.0 +. 2.0 +. 2.0) (Offline_dp.cost (Offline_dp.solve model seq))

let cheap_transfers_prefer_single_copy () =
  (* with very cheap transfers the optimum keeps one copy and beams
     everything else — and parks the coverage copy on s1 so that r3 is
     served for free: caching 2.0 plus only two transfers *)
  let model = Cost_model.make ~mu:1.0 ~lambda:0.001 () in
  let seq = Sequence.of_list ~m:3 [ (1, 1.0); (2, 1.5); (1, 2.0) ] in
  let expected = 2.0 +. (2.0 *. 0.001) in
  check_float "single copy + 2 transfers" expected (Offline_dp.cost (Offline_dp.solve model seq))

let expensive_transfers_prefer_migration () =
  (* transfers cost a fortune: the optimum pays exactly one to reach
     server 1 and caches everywhere it must *)
  let model = Cost_model.make ~mu:1.0 ~lambda:100.0 () in
  let seq = Sequence.of_list ~m:2 [ (1, 1.0); (1, 2.0); (1, 3.0) ] in
  check_float "one transfer + caching" (3.0 +. 100.0) (Offline_dp.cost (Offline_dp.solve model seq))

(* ------------------------------------------------------------ optimality *)

let optimality_vs_subset =
  qcheck ~count:500 "offline: fast DP equals the subset-state exact optimum"
    (problem_arbitrary ())
    (fun { model; seq } ->
      approx (Offline_dp.cost (Offline_dp.solve model seq)) (B.Subset_dp.solve model seq))

let optimality_vs_subset_with_upload =
  qcheck ~count:300 "offline: fast DP equals subset DP with uploads enabled"
    (problem_arbitrary ~with_upload:true ())
    (fun { model; seq } ->
      approx (Offline_dp.cost (Offline_dp.solve model seq)) (B.Subset_dp.solve model seq))

let optimality_vs_brute =
  qcheck ~count:200 "offline: fast DP equals brute force on tiny instances"
    (problem_arbitrary ~max_m:4 ~max_n:9 ())
    (fun { model; seq } ->
      approx (Offline_dp.cost (Offline_dp.solve model seq)) (B.Brute_force.solve model seq))

let naive_vectors_match =
  qcheck ~count:300 "offline: full-scan DP reproduces both C and D vectors"
    (problem_arbitrary ())
    (fun { model; seq } ->
      let r = Offline_dp.solve model seq in
      let c', d' = B.Naive_dp.solve_vectors model seq in
      let c = Offline_dp.c r and d = Offline_dp.d r in
      let ok = ref true in
      for i = 0 to Sequence.n seq do
        if not (approx c.(i) c'.(i) && approx d.(i) d'.(i)) then ok := false
      done;
      !ok)

(* -------------------------------------------------------- reconstruction *)

let reconstruction_feasible =
  qcheck ~count:400 "offline: reconstructed schedule is feasible and costs C(n)"
    (problem_arbitrary ())
    (fun { model; seq } ->
      let r = Offline_dp.solve model seq in
      let sched = Offline_dp.schedule r in
      (match Schedule.validate seq sched with Ok () -> true | Error _ -> false)
      && approx (Schedule.cost model sched) (Offline_dp.cost r))

let reconstruction_standard_form =
  qcheck ~count:300 "offline: reconstructed schedule is in standard form (Observation 1)"
    (problem_arbitrary ())
    (fun { model; seq } ->
      Schedule.is_standard_form seq (Offline_dp.schedule (Offline_dp.solve model seq)))

let subset_schedule_agrees =
  qcheck ~count:200 "offline: subset DP's own schedule is feasible with the same cost"
    (problem_arbitrary ~max_m:5 ~max_n:12 ())
    (fun { model; seq } ->
      let cost, sched = B.Subset_dp.solve_schedule model seq in
      (match Schedule.validate seq sched with Ok () -> true | Error _ -> false)
      && approx (Schedule.cost model sched) cost
      && approx cost (Offline_dp.cost (Offline_dp.solve model seq)))

(* ------------------------------------------------------- copy capacity *)

let capped_one_copy_vs_migrate_only =
  qcheck ~count:200 "capacity: one resident copy sits between OPT and the migrate-only path"
    (nonempty_problem_arbitrary ~max_m:5 ~max_n:14 ())
    (fun { model; seq } ->
      (* beam-and-discard costs one transfer; a bouncing lone copy two,
         so the capped optimum is sandwiched *)
      let capped = B.Subset_dp.solve ~max_copies:1 model seq in
      Dcache_prelude.Float_cmp.approx_le (B.Subset_dp.solve model seq) capped
      && Dcache_prelude.Float_cmp.approx_le capped
           (Dcache_spacetime.Graph.single_copy_optimum model seq))

let capped_monotone_in_k =
  qcheck ~count:150 "capacity: more allowed copies never cost more"
    (nonempty_problem_arbitrary ~max_m:5 ~max_n:12 ())
    (fun { model; seq } ->
      let cost k = B.Subset_dp.solve ~max_copies:k model seq in
      let unbounded = B.Subset_dp.solve model seq in
      Dcache_prelude.Float_cmp.approx_ge (cost 1) (cost 2)
      && Dcache_prelude.Float_cmp.approx_ge (cost 2) (cost 3)
      && Dcache_prelude.Float_cmp.approx_ge (cost 3) unbounded)

let capped_at_m_is_unbounded =
  qcheck ~count:150 "capacity: a cap of m changes nothing"
    (nonempty_problem_arbitrary ~max_m:5 ~max_n:12 ())
    (fun { model; seq } ->
      approx ~eps:1e-9
        (B.Subset_dp.solve ~max_copies:(Sequence.m seq) model seq)
        (B.Subset_dp.solve model seq))

let capped_rejects_zero () =
  let seq = Sequence.of_list ~m:2 [ (1, 1.0) ] in
  Alcotest.(check bool) "zero cap" true
    (try ignore (B.Subset_dp.solve ~max_copies:0 unit seq); false
     with Invalid_argument _ -> true)

(* ----------------------------------------------------- structural facts *)

let c_monotone =
  qcheck "offline: C is non-decreasing in i" (problem_arbitrary ()) (fun { model; seq } ->
      let c = Offline_dp.c (Offline_dp.solve model seq) in
      let ok = ref true in
      for i = 1 to Sequence.n seq do
        if c.(i) < c.(i - 1) -. 1e-9 then ok := false
      done;
      !ok)

let c_below_d =
  qcheck "offline: C(i) <= D(i) (Definition 7)" (problem_arbitrary ()) (fun { model; seq } ->
      let r = Offline_dp.solve model seq in
      let c = Offline_dp.c r and d = Offline_dp.d r in
      let ok = ref true in
      for i = 1 to Sequence.n seq do
        if not (Dcache_prelude.Float_cmp.approx_le c.(i) d.(i)) then ok := false
      done;
      !ok)

let b_below_c =
  qcheck "offline: B_i <= C(i) (the running bound, Definition 5)"
    (problem_arbitrary ~with_upload:false ())
    (fun { model; seq } ->
      let r = Offline_dp.solve model seq in
      let c = Offline_dp.c r and big_b = Offline_dp.running_bounds r in
      let ok = ref true in
      for i = 1 to Sequence.n seq do
        if not (Dcache_prelude.Float_cmp.approx_le big_b.(i) c.(i)) then ok := false
      done;
      !ok)

let prefix_consistency =
  qcheck ~count:150 "offline: C(k) of the full run equals the optimum of the k-prefix"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      let c = Offline_dp.c (Offline_dp.solve model seq) in
      let k = max 1 (Sequence.n seq / 2) in
      approx c.(k) (Offline_dp.cost (Offline_dp.solve model (Sequence.sub seq k))))

let scale_invariance =
  qcheck ~count:150 "offline: scaling mu and lambda together scales the optimum"
    (problem_arbitrary ~with_upload:false ())
    (fun { model; seq } ->
      let scaled =
        Cost_model.make ~mu:(3.0 *. model.Cost_model.mu) ~lambda:(3.0 *. model.Cost_model.lambda) ()
      in
      approx ~eps:1e-6
        (3.0 *. Offline_dp.cost (Offline_dp.solve model seq))
        (Offline_dp.cost (Offline_dp.solve scaled seq)))

let upload_never_hurts =
  qcheck ~count:150 "offline: enabling uploads never increases the optimum"
    (problem_arbitrary ~with_upload:false ())
    (fun { model; seq } ->
      let with_upload =
        Cost_model.make ~upload:(model.Cost_model.lambda /. 2.0) ~mu:model.Cost_model.mu
          ~lambda:model.Cost_model.lambda ()
      in
      Dcache_prelude.Float_cmp.approx_le
        (Offline_dp.cost (Offline_dp.solve with_upload seq))
        (Offline_dp.cost (Offline_dp.solve model seq)))

let suite =
  [
    case "fig6: C vector matches the paper" fig6_c_vector;
    case "fig6: D vector matches the paper" fig6_d_vector;
    case "fig6: pivot indices (Lemma 3 vs Lemma 4)" fig6_pivots;
    case "fig6: running bounds used in D(7)" fig6_bounds;
    case "fig2: caching 3.2 + transfers 4.0" fig2_costs;
    case "degenerate: empty sequence" empty_sequence;
    case "degenerate: one request at home" single_request_home;
    case "degenerate: one remote request" single_request_remote;
    case "degenerate: single server" one_server_only;
    case "break-even between cache and transfer" transfer_vs_cache_breakeven;
    case "cheap transfers: one copy, beam the rest" cheap_transfers_prefer_single_copy;
    case "expensive transfers: migrate once" expensive_transfers_prefer_migration;
    optimality_vs_subset;
    optimality_vs_subset_with_upload;
    optimality_vs_brute;
    naive_vectors_match;
    reconstruction_feasible;
    reconstruction_standard_form;
    subset_schedule_agrees;
    capped_one_copy_vs_migrate_only;
    capped_monotone_in_k;
    capped_at_m_is_unbounded;
    case "capacity: rejects a zero cap" capped_rejects_zero;
    c_monotone;
    c_below_d;
    b_below_c;
    prefix_consistency;
    scale_invariance;
    upload_never_hurts;
  ]
