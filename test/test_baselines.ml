(* Tests for the online baseline policies. *)

open Dcache_core
open Helpers
module OP = Dcache_baselines.Online_policies

let unit = Cost_model.unit

let opt model seq = Offline_dp.cost (Offline_dp.solve model seq)

(* ------------------------------------------------------- exact behaviour *)

let static_home_cost () =
  let model = Cost_model.make ~mu:1.0 ~lambda:3.0 () in
  let seq = Sequence.of_list ~m:3 [ (1, 1.0); (0, 2.0); (2, 4.0) ] in
  (* mu * t_n + lambda * (two non-home requests) *)
  check_float "cost" (4.0 +. 6.0) (OP.static_home model seq).cost

let follow_cost () =
  let model = Cost_model.make ~mu:1.0 ~lambda:3.0 () in
  let seq = Sequence.of_list ~m:3 [ (1, 1.0); (1, 2.0); (2, 4.0) ] in
  (* mu * t_n + lambda * (moves: 0->1, 1->2) *)
  check_float "cost" (4.0 +. 6.0) (OP.follow model seq).cost

let cache_everywhere_cost () =
  let model = Cost_model.make ~mu:1.0 ~lambda:3.0 () in
  let seq = Sequence.of_list ~m:3 [ (1, 1.0); (2, 2.0); (1, 3.0); (2, 4.0) ] in
  (* s0 caches [0,4], s1 [1,4], s2 [2,4]; transfers on first touches *)
  check_float "cost" (4.0 +. 3.0 +. 2.0 +. 6.0) (OP.cache_everywhere model seq).cost

let lru_capacity_one_is_follow () =
  let model = Cost_model.make ~mu:0.7 ~lambda:2.2 () in
  let seq =
    Sequence.of_list ~m:4 [ (1, 0.4); (2, 0.9); (1, 1.7); (3, 2.0); (3, 2.4); (0, 3.0) ]
  in
  check_float "k=1 behaves like follow" (OP.follow model seq).cost
    (OP.classic_lru ~capacity:1 model seq).cost

let lru_eviction_order () =
  let model = Cost_model.unit in
  (* capacity 2: servers 0,1 cached; request on 2 evicts 0 (LRU);
     then a request on 0 misses again *)
  let seq = Sequence.of_list ~m:3 [ (1, 1.0); (2, 2.0); (0, 3.0) ] in
  let o = OP.classic_lru ~capacity:2 model seq in
  (* transfers: to 1, to 2, back to 0 -> 3 *)
  Alcotest.(check int) "three transfers" 3 (Schedule.num_transfers o.schedule)

let lru_hit_keeps_copy () =
  let model = Cost_model.unit in
  let seq = Sequence.of_list ~m:3 [ (1, 1.0); (1, 5.0); (1, 9.0) ] in
  let o = OP.classic_lru ~capacity:2 model seq in
  Alcotest.(check int) "one transfer, then hits" 1 (Schedule.num_transfers o.schedule)

let lru_rejects_zero_capacity () =
  Alcotest.(check bool) "capacity 0" true
    (try
       ignore (OP.classic_lru ~capacity:0 unit (Sequence.of_list ~m:2 [ (1, 1.0) ]));
       false
     with Invalid_argument _ -> true)

(* --------------------------------------------------------- feasibility *)

let all_policies_feasible =
  qcheck ~count:250 "baselines: every deterministic policy emits a feasible schedule"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      List.for_all
        (fun (o : OP.outcome) ->
          match Schedule.validate seq o.schedule with Ok () -> true | Error _ -> false)
        (OP.all_deterministic model seq))

let all_policies_cost_consistent =
  qcheck ~count:250 "baselines: reported cost equals the schedule's cost"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      List.for_all
        (fun (o : OP.outcome) -> approx ~eps:1e-6 o.cost (Schedule.cost model o.schedule))
        (OP.all_deterministic model seq))

let all_policies_at_least_opt =
  qcheck ~count:250 "baselines: no online policy beats the offline optimum"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      let best = opt model seq in
      List.for_all
        (fun (o : OP.outcome) -> Dcache_prelude.Float_cmp.approx_ge o.cost best)
        (OP.all_deterministic model seq))

let sc_outcome_matches_run =
  qcheck ~count:200 "baselines: the SC outcome equals Online_sc.run"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      approx ~eps:1e-6 (OP.sc model seq).cost (Online_sc.run model seq).total_cost)

let randomized_sc_feasible =
  qcheck ~count:100 "baselines: randomized SC is feasible and bounded by 3/min-window heuristics"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      let rng = Dcache_prelude.Rng.create 4096 in
      let o = OP.randomized_sc ~rng model seq in
      (match Schedule.validate seq o.schedule with Ok () -> true | Error _ -> false)
      && o.cost >= 0.0)

let randomized_per_copy_feasible =
  qcheck ~count:100 "baselines: per-copy randomized SC is feasible and consistent"
    (nonempty_problem_arbitrary ())
    (fun { model; seq } ->
      let rng = Dcache_prelude.Rng.create 2024 in
      let o = OP.randomized_sc_per_copy ~rng model seq in
      (match Schedule.validate seq o.schedule with Ok () -> true | Error _ -> false)
      && approx ~eps:1e-6 o.cost (Schedule.cost model o.schedule)
      && Dcache_prelude.Float_cmp.approx_ge o.cost (opt model seq))

let sc_with_window_spans_behaviour () =
  let model = Cost_model.unit in
  let seq = Sequence.of_list ~m:2 [ (1, 1.0); (1, 2.5); (0, 6.0) ] in
  let tiny = OP.sc_with_window ~window:0.01 model seq in
  let huge = OP.sc_with_window ~window:100.0 model seq in
  (* the huge window keeps everything: cost ~ cache_everywhere *)
  check_le "huge window caches more" (OP.sc_with_window ~window:1.0 model seq).cost huge.cost;
  Alcotest.(check bool) "tiny window transfers more" true
    (Schedule.num_transfers tiny.schedule >= Schedule.num_transfers huge.schedule)

let suite =
  [
    case "static-home: exact cost" static_home_cost;
    case "follow: exact cost" follow_cost;
    case "cache-everywhere: exact cost" cache_everywhere_cost;
    case "classic-lru: capacity 1 degenerates to follow" lru_capacity_one_is_follow;
    case "classic-lru: LRU eviction order" lru_eviction_order;
    case "classic-lru: hits keep the copy" lru_hit_keeps_copy;
    case "classic-lru: rejects zero capacity" lru_rejects_zero_capacity;
    all_policies_feasible;
    all_policies_cost_consistent;
    all_policies_at_least_opt;
    sc_outcome_matches_run;
    randomized_sc_feasible;
    randomized_per_copy_feasible;
    case "sc window extremes" sc_with_window_spans_behaviour;
  ]
