(* A guided tour of the paper's two worked examples, recomputed live:

   - Section IV's running example (the paper's Fig 6): the C/D
     recurrence vectors, the pivot indices, and the reconstructed
     optimal schedule;
   - the standard-form schedule of Fig 2 (caching 3.2 + transfers 4.0).

     dune exec examples/paper_walkthrough.exe
*)

open Dcache_core

let rule title =
  Printf.printf "\n--- %s %s\n\n" title (String.make (max 1 (64 - String.length title)) '-')

let () =
  rule "Fig 6: the running example of Section IV (m = 4, n = 8)";
  (* Server 0 here is the paper's s^1, the initial holder. *)
  let model = Cost_model.unit in
  let seq =
    Sequence.of_list ~m:4
      [ (1, 0.5); (2, 0.8); (3, 1.1); (0, 1.4); (1, 2.6); (1, 3.2); (2, 4.0); (3, 4.4) ]
  in
  let r = Offline_dp.solve model seq in
  let c = Offline_dp.c r and d = Offline_dp.d r in
  Printf.printf "%-3s %-7s %-6s %-8s %-8s %s\n" "i" "server" "t_i" "C(i)" "D(i)" "pivot";
  for i = 0 to Sequence.n seq do
    let pivot =
      match Offline_dp.pivot_of r i with
      | Some kappa -> Printf.sprintf "kappa = %d (Lemma 4)" kappa
      | None -> if d.(i) < infinity then "C(p(i)) anchor (Lemma 3)" else "-"
    in
    Printf.printf "%-3d %-7s %-6.1f %-8.1f %-8s %s\n" i
      (Printf.sprintf "s^%d" (Sequence.server seq i + 1))
      (Sequence.time seq i) c.(i)
      (if d.(i) = infinity then "inf" else Printf.sprintf "%.1f" d.(i))
      pivot
  done;
  print_newline ();
  Printf.printf "The paper's text states C(1..7) = 1.5, 2.8, 4.1, 4.4, 6.5, 7.1, 8.9\n";
  Printf.printf "and D(4) = 4.4, D(7) = 9.2 — compare with the column above.\n";
  Printf.printf "\nOptimal schedule, cost %.1f:\n\n" (Offline_dp.cost r);
  print_string (Schedule.render seq (Offline_dp.schedule r));

  rule "Fig 2: a standard-form optimal schedule (mu = lambda = 1)";
  let seq2 =
    Sequence.of_list ~m:3 [ (1, 1.2); (0, 1.4); (2, 1.6); (1, 3.1); (0, 3.15); (2, 3.2) ]
  in
  let r2 = Offline_dp.solve model seq2 in
  let sched2 = Offline_dp.schedule r2 in
  Printf.printf "caching cost  %.1f   (the paper reads 1.4u + 0.2u + 1.6u = 3.2 off its figure)\n"
    (Schedule.caching_cost model sched2);
  Printf.printf "transfer cost %.1f   (the paper reads 4 lambda = 4.0)\n"
    (Schedule.transfer_cost model sched2);
  Printf.printf "total         %.1f\n" (Offline_dp.cost r2);
  Printf.printf "standard form (every transfer ends on a request): %b\n\n"
    (Schedule.is_standard_form seq2 sched2);
  print_string (Schedule.render seq2 sched2);

  rule "Observation: the running bound B_i really is a lower bound";
  let bounds = Offline_dp.running_bounds r in
  for i = 1 to Sequence.n seq do
    assert (bounds.(i) <= c.(i) +. 1e-9)
  done;
  Printf.printf "checked B_i <= C(i) for every i on the Fig 6 instance: OK\n"
