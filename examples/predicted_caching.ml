(* Learning-augmented speculative caching.

   The paper's motivation — mobile trajectories are ~93% predictable —
   is used offline only.  Here we hand the online algorithm a
   prediction of each server's next request and watch the competitive
   gap close, then feed it garbage and watch it degrade gracefully.

     dune exec examples/predicted_caching.exe
*)

open Dcache_core

let () =
  let model = Cost_model.make ~mu:1.0 ~lambda:2.0 () in
  let seq =
    Dcache_workload.Generator.generate_seeded ~seed:777
      {
        Dcache_workload.Generator.m = 6;
        n = 800;
        arrival = Dcache_workload.Arrival.Poisson { rate = 1.2 };
        placement = Dcache_workload.Placement.Mobility { stay = 0.8; ring = true };
      }
  in
  let opt = Offline_dp.cost (Offline_dp.solve model seq) in
  Printf.printf "commuter trace: m = 6, n = 800; offline optimum %.1f\n\n" opt;

  let report name run =
    Printf.printf "  %-28s cost %8.1f   ratio %.3f   transfers %4d\n" name
      run.Online_sc.total_cost
      (run.Online_sc.total_cost /. opt)
      run.Online_sc.num_transfers
  in
  report "standard SC (no predictions)" (Online_sc.run model seq);
  let rng = Dcache_prelude.Rng.create 42 in
  List.iter
    (fun beta ->
      report
        (Printf.sprintf "oracle, beta = %.2f" beta)
        (Online_predictive.run ~beta (Online_predictive.oracle seq) model seq))
    [ 1.0; 0.5; 0.25 ];
  List.iter
    (fun err ->
      report
        (Printf.sprintf "noisy oracle, err = %.1f" err)
        (Online_predictive.run ~beta:0.5
           (Online_predictive.noisy ~rng:(Dcache_prelude.Rng.split rng) ~relative_error:err seq)
           model seq))
    [ 0.3; 1.0; 3.0 ];
  report "log-mining predictor" (Online_predictive.run ~beta:0.5 (Online_predictive.frequency seq) model seq);
  print_string
    "\nThe oracle rows show what trajectory prediction is worth; the noisy rows show the\n\
     price of believing a bad model; the log-mining row needs nothing but the service's\n\
     own past requests.  All rows remain feasible online algorithms — only their windows\n\
     differ.\n"
