(* Scenario from the paper's introduction: a photo album shared through
   a mobile cloud service.  A commuting user's accesses follow a
   spatial-temporal trajectory over edge sites (cells); the provider
   pays per GB-hour of cache and per inter-site transfer, and wants the
   bill minimised — not the hit ratio maximised.

   We synthesise a commuter trajectory (Markov mobility over a ring of
   cells), price it with realistic-ish ratios, and compare every
   strategy in the repository.

     dune exec examples/mobile_photo_service.exe
*)

open Dcache_core

let () =
  let cells = 8 in
  let requests = 1000 in
  (* caching: 1 cost unit per hour; transfer between sites: 3 units *)
  let model = Cost_model.make ~mu:1.0 ~lambda:3.0 () in

  (* The commuter reads the album every ~20 minutes and moves to an
     adjacent cell about once an hour: a highly predictable trajectory
     (the paper's "93% of human behaviour" motivation). *)
  let seq =
    Dcache_workload.Generator.generate_seeded ~seed:2017
      {
        Dcache_workload.Generator.m = cells;
        n = requests;
        arrival = Dcache_workload.Arrival.Poisson { rate = 3.0 } (* per hour *);
        placement = Dcache_workload.Placement.Mobility { stay = 0.92; ring = true };
      }
  in
  Printf.printf "m = %d edge sites, n = %d requests over %.1f hours\n\n" cells requests
    (Sequence.horizon seq);

  (* With the trajectory known in advance (mined from service logs,
     says the paper), the provider runs the O(mn) offline optimum. *)
  let opt = Offline_dp.cost (Offline_dp.solve model seq) in

  let outcomes = Dcache_baselines.Online_policies.all_deterministic ~lru_capacity:3 model seq in
  let table =
    Dcache_prelude.Table.create
      [
        Dcache_prelude.Table.column ~align:Dcache_prelude.Table.Left "strategy";
        Dcache_prelude.Table.column "bill";
        Dcache_prelude.Table.column "vs optimum";
        Dcache_prelude.Table.column "overpayment";
      ]
  in
  List.iter
    (fun (o : Dcache_baselines.Online_policies.outcome) ->
      Dcache_prelude.Table.add_row table
        [
          o.name;
          Dcache_prelude.Table.fmt_float ~prec:0 o.cost;
          Dcache_prelude.Table.fmt_float ~prec:3 (o.cost /. opt);
          Printf.sprintf "+%.0f%%" (100. *. ((o.cost /. opt) -. 1.));
        ])
    outcomes;
  Dcache_prelude.Table.add_row table
    [ "offline optimum (trajectory known)"; Dcache_prelude.Table.fmt_float ~prec:0 opt; "1.000"; "-" ];
  Dcache_prelude.Table.print table;

  (* How much does the multi-copy ability matter on a trajectory
     workload?  Compare against the best migrate-only schedule. *)
  let single = Dcache_spacetime.Graph.single_copy_optimum model seq in
  Printf.printf
    "\nbest single-copy (migrate-only) schedule: %.0f — replication saves %.1f%% here,\n\
     little on a clean trajectory; it pays off when the user oscillates between cells.\n"
    single
    (100. *. (1. -. (opt /. single)));

  (* The online answer when logs are not available: SC, with its
     per-request O(1) decision and the 3-competitive guarantee. *)
  let sc = Online_sc.run model seq in
  Printf.printf
    "\nwithout any trajectory knowledge, speculative caching pays %.0f (%.1f%% over optimum,\n\
     guaranteed never worse than 3x) and serves %d of %d requests from local cache.\n"
    sc.total_cost
    (100. *. ((sc.total_cost /. opt) -. 1.))
    (Array.fold_left
       (fun acc kind -> match kind with Online_sc.By_cache -> acc + 1 | _ -> acc)
       (-1) (* index 0 is a dummy marked By_cache *)
       sc.serves)
    requests
