(* Tour of the discrete-event simulator substrate.

   The same physical model backs three independent implementations in
   this repository: the recurrence mathematics (Offline_dp), schedule
   pricing (Schedule.cost), and the event-driven engine.  This example
   shows them agreeing on one workload, runs the timer-driven SC
   policy, and finishes with the heterogeneous-cost mode that the
   analytic algorithms do not support.

     dune exec examples/simulator_tour.exe
*)

open Dcache_core
module Sim = Dcache_sim

let () =
  let model = Cost_model.make ~mu:1.0 ~lambda:2.5 () in
  let seq =
    Dcache_workload.Generator.generate_seeded ~seed:314
      {
        Dcache_workload.Generator.m = 5;
        n = 300;
        arrival = Dcache_workload.Arrival.Pareto { shape = 1.6; scale = 0.3 };
        placement = Dcache_workload.Placement.Mobility { stay = 0.75; ring = false };
      }
  in

  (* 1. replay the optimal schedule through the engine *)
  let dp = Offline_dp.solve model seq in
  let schedule = Offline_dp.schedule dp in
  let replay = Sim.Engine.run (Sim.Replay.make schedule) model seq in
  Printf.printf "offline optimum, three independent accountants:\n";
  Printf.printf "  recurrence C(n)        = %.4f\n" (Offline_dp.cost dp);
  Printf.printf "  Schedule.cost          = %.4f\n" (Schedule.cost model schedule);
  Printf.printf "  event-driven engine    = %.4f\n\n" replay.metrics.total_cost;

  (* 2. the SC policy, driven purely by engine timers *)
  let engine_sc = Sim.Engine.run (module Sim.Sc_policy) model seq in
  let analytic_sc = Online_sc.run model seq in
  Printf.printf "speculative caching, two independent implementations:\n";
  Printf.printf "  analytic simulation    = %.4f\n" analytic_sc.total_cost;
  Printf.printf "  timer-driven policy    = %.4f\n\n" engine_sc.metrics.total_cost;
  Format.printf "engine metrics for SC:@.%a@.@." Sim.Metrics.pp engine_sc.metrics;

  (* 3. heterogeneous costs: a far-away site is expensive to reach,
     fast storage on site 0 costs double.  The analytic DP assumes
     homogeneity, so here only the engine gives the truth; the subset
     DP could be extended, but the point is the simulator's role. *)
  let costs =
    {
      Sim.Engine.mu_of = (fun s -> if s = 0 then 2.0 else 1.0);
      lambda_of =
        (fun ~src ~dst ->
          let far s = s = 4 in
          if far src || far dst then 10.0 else 2.5);
      upload_of = (fun _ -> infinity);
    }
  in
  let hetero_sc = Sim.Engine.run ~costs (module Sim.Sc_policy) model seq in
  let hetero_follow = Sim.Engine.run ~costs (module Sim.Simple_policies.Follow) model seq in
  let hetero_home = Sim.Engine.run ~costs (module Sim.Simple_policies.Static_home) model seq in
  Printf.printf "heterogeneous mode (site 4 is far, site 0 has pricey storage):\n";
  Printf.printf "  static-home  %.1f\n" hetero_home.metrics.total_cost;
  Printf.printf "  follow       %.1f\n" hetero_follow.metrics.total_cost;
  Printf.printf "  SC           %.1f\n" hetero_sc.metrics.total_cost;
  print_string
    "\nSC still works (its window uses the homogeneous model as an approximation) but no\n\
     longer carries its guarantee — the homogeneity assumption is load-bearing in the\n\
     paper's analysis, which is exactly why the engine exists: to measure beyond it.\n"
