(* Quickstart: pose a tiny instance, solve it offline, run the online
   algorithm, and compare.

     dune exec examples/quickstart.exe
*)

open Dcache_core

let () =
  (* Three fully connected servers; the data item starts on server 0.
     Caching costs 1 per copy per time unit, a transfer costs 2. *)
  let model = Cost_model.make ~mu:1.0 ~lambda:2.0 () in

  (* Six requests: (server, time), strictly increasing times. *)
  let seq =
    Sequence.of_list ~m:3
      [ (1, 0.5); (1, 1.0); (2, 1.2); (0, 2.5); (2, 2.8); (1, 4.0) ]
  in

  (* --- offline: the O(mn) dynamic program ------------------------- *)
  let result = Offline_dp.solve model seq in
  let schedule = Offline_dp.schedule result in
  Printf.printf "offline optimum: %.2f\n" (Offline_dp.cost result);
  Printf.printf "  caching  %.2f\n" (Schedule.caching_cost model schedule);
  Printf.printf "  transfer %.2f (%d transfers)\n\n"
    (Schedule.transfer_cost model schedule)
    (Schedule.num_transfers schedule);
  print_string (Schedule.render seq schedule);

  (* The schedule is a first-class value: validate it against the
     instance's feasibility constraints. *)
  (match Schedule.validate seq schedule with
  | Ok () -> print_endline "\nschedule validated: every request served, coverage unbroken"
  | Error problems -> List.iter print_endline problems);

  (* --- online: speculative caching -------------------------------- *)
  let sc = Online_sc.run model seq in
  Printf.printf "\nonline SC cost: %.2f (ratio %.2f, proven bound %.0f)\n" sc.total_cost
    (sc.total_cost /. Offline_dp.cost result)
    Online_sc.competitive_bound;

  (* The paper's lower bound B_n holds for any algorithm. *)
  Printf.printf "running lower bound B_n: %.2f\n" (Bounds.lower_bound model seq)
