(* Planning a whole catalogue of shared items under a storage budget.

   Each item is solved exactly by the O(mn) dynamic program; a
   provider-wide cap on caching spend couples them, and the Lagrangian
   planner finds the cheapest plan meeting it — with a dual bound that
   certifies how much better any plan could possibly be.

     dune exec examples/catalogue_budget.exe
*)

open Dcache_core
module M = Dcache_multi.Multi_item

let () =
  let m = 5 in
  let model = Cost_model.make ~mu:1.0 ~lambda:2.5 () in
  let trace seed placement =
    Sequence.requests
      (Dcache_workload.Generator.generate_seeded ~seed
         {
           Dcache_workload.Generator.m;
           n = 150;
           arrival = Dcache_workload.Arrival.Poisson { rate = 1.0 };
           placement;
         })
  in
  let items =
    [
      { M.label = "trending-video"; size = 4.0; requests = trace 1 (Dcache_workload.Placement.Zipf { exponent = 1.3 }) };
      { M.label = "shared-album"; size = 1.0; requests = trace 2 (Dcache_workload.Placement.Mobility { stay = 0.85; ring = true }) };
      { M.label = "team-document"; size = 0.2; requests = trace 3 Dcache_workload.Placement.Uniform_random };
    ]
  in
  let free = M.plan model ~m items in
  Printf.printf "unconstrained catalogue optimum: %.1f total (%.1f caching + %.1f transfers)\n"
    free.total_cost free.total_caching free.total_transfer;
  List.iter
    (fun (p : M.planned) ->
      Printf.printf "  %-15s cost %8.1f (caching %8.1f, transfers %6.1f)\n" p.p_label p.p_cost
        p.p_caching p.p_transfer)
    free.items;
  let floor_spend = M.minimum_caching model ~m items in
  Printf.printf "\ncoverage floor (one copy per item, always): %.1f\n" floor_spend;

  Printf.printf "\nshrinking the storage budget:\n";
  List.iter
    (fun frac ->
      let budget = floor_spend +. (frac *. (free.total_caching -. floor_spend)) in
      match M.plan_with_caching_budget model ~m ~budget items with
      | Ok b ->
          Printf.printf
            "  budget %8.1f -> cost %8.1f (caching %8.1f, theta %.3f, dual gap %.2f%%)\n" budget
            b.feasible.total_cost b.feasible.total_caching b.multiplier
            (100. *. (b.feasible.total_cost -. b.dual_bound) /. b.dual_bound)
      | Error msg -> Printf.printf "  budget %8.1f -> %s\n" budget msg)
    [ 0.8; 0.5; 0.2; 0.0 ];
  match M.plan_with_caching_budget model ~m ~budget:(floor_spend *. 0.9) items with
  | Error msg -> Printf.printf "\nand below the floor, the planner refuses: %s\n" msg
  | Ok _ -> assert false
