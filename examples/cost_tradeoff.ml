(* Where does caching stop paying and transferring start?

   The model has a single dial that matters: lambda/mu, the break-even
   interval (the online algorithm's speculative window).  This example
   sweeps it over a fixed workload and reports how the optimal
   schedule's composition — copies kept, transfers made — shifts, and
   how the online algorithm tracks it.

     dune exec examples/cost_tradeoff.exe
*)

open Dcache_core

let () =
  let m = 6 and n = 500 in
  let seq =
    Dcache_workload.Generator.generate_seeded ~seed:11
      {
        Dcache_workload.Generator.m;
        n;
        arrival = Dcache_workload.Arrival.Poisson { rate = 1.0 };
        placement = Dcache_workload.Placement.Zipf { exponent = 1.0 };
      }
  in
  Printf.printf "fixed workload: m = %d, n = %d, horizon %.1f (zipf placement, poisson arrivals)\n\n"
    m n (Sequence.horizon seq);
  let table =
    Dcache_prelude.Table.create
      [
        Dcache_prelude.Table.column "lambda/mu";
        Dcache_prelude.Table.column "OPT";
        Dcache_prelude.Table.column "caching share";
        Dcache_prelude.Table.column "transfers";
        Dcache_prelude.Table.column "peak copies";
        Dcache_prelude.Table.column "SC/OPT";
      ]
  in
  List.iter
    (fun ratio ->
      let model = Cost_model.make ~mu:1.0 ~lambda:ratio () in
      let result = Offline_dp.solve model seq in
      let schedule = Offline_dp.schedule result in
      (* measure the peak number of simultaneous copies by replaying
         the optimal schedule through the event-driven engine *)
      let replay = Dcache_sim.Engine.run (Dcache_sim.Replay.make schedule) model seq in
      let sc = Online_sc.run model seq in
      Dcache_prelude.Table.add_row table
        [
          Dcache_prelude.Table.fmt_float ~prec:2 ratio;
          Dcache_prelude.Table.fmt_float ~prec:0 (Offline_dp.cost result);
          Printf.sprintf "%.0f%%"
            (100. *. Schedule.caching_cost model schedule /. Offline_dp.cost result);
          string_of_int (Schedule.num_transfers schedule);
          string_of_int replay.metrics.peak_copies;
          Dcache_prelude.Table.fmt_float ~prec:3 (sc.total_cost /. Offline_dp.cost result);
        ])
    [ 0.05; 0.2; 0.5; 1.0; 2.0; 5.0; 20.0; 100.0 ];
  Dcache_prelude.Table.print table;
  print_string
    "\nReading: cheap transfers (small lambda/mu) -> the optimum keeps almost no copies\n\
     and transfers on demand; expensive transfers -> it replicates widely and caches.\n\
     The crossover sits where the break-even interval lambda/mu passes the typical\n\
     revisit interval of the workload.  SC tracks the optimum across the whole sweep\n\
     without knowing any of this in advance.\n"
