(* Rolling-horizon re-planning with the streaming solver.

   The recurrences of Section IV consume requests strictly in time
   order, so the "offline" optimum is available online whenever the
   past is known: push each arriving request, read the exact optimum
   so far in O(m) amortised, and re-emit the current best schedule
   whenever the provider wants to re-plan.  This example streams a
   trace through the solver, reporting how the optimum, the lower
   bound B_i, and the online algorithm's actual spend co-evolve.

     dune exec examples/streaming_replanner.exe
*)

open Dcache_core

let () =
  let model = Cost_model.make ~mu:1.0 ~lambda:2.0 () in
  let seq =
    Dcache_workload.Generator.generate_seeded ~seed:6061
      {
        Dcache_workload.Generator.m = 5;
        n = 60;
        arrival = Dcache_workload.Arrival.Periodic { base_rate = 0.3; peak_rate = 3.0; period = 15.0 };
        placement = Dcache_workload.Placement.Multi_user { users = 2; stay = 0.85; ring = true };
      }
  in
  let stream = Streaming_dp.create model ~m:(Sequence.m seq) in
  Printf.printf "%6s %8s %12s %12s %12s\n" "i" "t_i" "optimum C(i)" "bound B_i" "gap";
  for i = 1 to Sequence.n seq do
    Streaming_dp.push stream ~server:(Sequence.server seq i) ~time:(Sequence.time seq i);
    if i mod 10 = 0 || i = Sequence.n seq then
      Printf.printf "%6d %8.2f %12.2f %12.2f %11.1f%%\n" i (Sequence.time seq i)
        (Streaming_dp.cost stream)
        (Streaming_dp.running_at stream i)
        (100.
        *. (Streaming_dp.cost stream -. Streaming_dp.running_at stream i)
        /. Streaming_dp.cost stream)
  done;

  (* mid-stream re-plan: materialise the current optimal schedule *)
  let schedule = Streaming_dp.schedule stream in
  Printf.printf "\nfinal optimal schedule re-derived from the stream (cost %.2f):\n\n"
    (Streaming_dp.cost stream);
  print_string (Schedule.render (Streaming_dp.to_sequence stream) schedule);

  (* sanity: the batch solver agrees *)
  let batch = Offline_dp.cost (Offline_dp.solve model seq) in
  Printf.printf "\nbatch solver on the same trace: %.2f (equal: %b)\n" batch
    (Dcache_prelude.Float_cmp.approx_eq batch (Streaming_dp.cost stream));

  (* and what the online algorithm actually paid, not knowing the future *)
  let sc = Online_sc.run model seq in
  Printf.printf "online speculative caching paid: %.2f (%.2fx)\n" sc.total_cost
    (sc.total_cost /. batch)
